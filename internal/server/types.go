// Package server implements mamaserved: an HTTP/JSON service that runs
// (mix, config, controller) simulation jobs through experiment.Runner.
// It is built from three pieces — a bounded job queue with 429
// backpressure, a worker pool executing jobs with per-job timeout and
// cancellation, and a content-addressed result cache with singleflight
// deduplication so identical in-flight requests share one simulation.
package server

import (
	"fmt"
	"strings"
	"time"

	"micromama/internal/cluster"
	"micromama/internal/experiment"
	"micromama/internal/sweep"
	"micromama/internal/workload"
)

// JobSpec is the client-supplied description of one simulation job.
// The zero values of optional fields mean "use the scale's default".
type JobSpec struct {
	// Mix lists catalog trace names, one per core (see workload.Catalog
	// or GET /v1/catalog).
	Mix []string `json:"mix"`
	// Controller is one of experiment.ControllerKeys.
	Controller string `json:"controller"`
	// Scale names the simulation budget: tiny, small, default, or full.
	// Empty means "default".
	Scale string `json:"scale,omitempty"`
	// Seed labels the mix (workload.Mix.ID) and namespaces the cache
	// key; jobs differing only in Seed are distinct cache entries.
	Seed uint64 `json:"seed,omitempty"`
	// Target overrides the scale's instruction-retirement goal per core.
	Target uint64 `json:"target,omitempty"`
	// Step overrides the scale's agent timestep (L2 demand accesses).
	Step uint64 `json:"step,omitempty"`
	// DRAMMTps and DRAMChannels override the memory system
	// (DDR4 speed grade and channel count).
	DRAMMTps     int `json:"dram_mtps,omitempty"`
	DRAMChannels int `json:"dram_channels,omitempty"`
	// TimeoutMs bounds the job's wall-clock execution; 0 uses the
	// server default. Values above the server maximum are clamped.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// normalize canonicalizes fields that admit aliases so that equivalent
// specs hash identically. Mix is rewritten into a fresh slice so the
// normalized spec never aliases caller-held memory (specs are
// re-resolved on worker goroutines while handlers serialize views).
func (s *JobSpec) normalize() {
	s.Controller = strings.TrimSpace(s.Controller)
	s.Scale = strings.ToLower(strings.TrimSpace(s.Scale))
	if s.Scale == "" {
		s.Scale = "default"
	}
	mix := make([]string, len(s.Mix))
	for i := range s.Mix {
		mix[i] = strings.TrimSpace(s.Mix[i])
	}
	s.Mix = mix
}

// scaleByName maps API scale names to experiment scales.
func scaleByName(name string) (experiment.Scale, bool) {
	switch name {
	case "tiny":
		return experiment.ScaleTiny, true
	case "small":
		return experiment.ScaleSmall, true
	case "default":
		return experiment.ScaleDefault, true
	case "full":
		return experiment.ScaleFull, true
	}
	return experiment.Scale{}, false
}

// validate checks the spec against the catalog and controller registry.
func (s *JobSpec) validate(maxCores int) error {
	if len(s.Mix) == 0 {
		return fmt.Errorf("mix must name at least one trace")
	}
	if maxCores > 0 && len(s.Mix) > maxCores {
		return fmt.Errorf("mix has %d traces; server accepts at most %d cores", len(s.Mix), maxCores)
	}
	for _, name := range s.Mix {
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("unknown trace %q (see GET /v1/catalog)", name)
		}
	}
	if s.Controller == "" {
		return fmt.Errorf("controller is required")
	}
	found := false
	for _, k := range experiment.ControllerKeys {
		if k == s.Controller {
			found = true
			break
		}
	}
	if !found {
		// Name the known set so tournament clients can self-correct
		// without a second round trip to /v1/catalog.
		return fmt.Errorf("unknown controller %q (known: %s)",
			s.Controller, strings.Join(experiment.ControllerKeys, ", "))
	}
	if _, ok := scaleByName(s.Scale); !ok {
		return fmt.Errorf("unknown scale %q (tiny|small|default|full)", s.Scale)
	}
	if s.TimeoutMs < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	return nil
}

// JobStatus is a job's lifecycle state: queued → running → done|failed.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// JobResult is the metrics payload of a finished job.
type JobResult struct {
	Mix        string    `json:"mix"`
	Controller string    `json:"controller"`
	WS         float64   `json:"ws"`
	HS         float64   `json:"hs"`
	GM         float64   `json:"gm"`
	Unfairness float64   `json:"unfairness"`
	Speedups   []float64 `json:"speedups"`
	IPC        []float64 `json:"ipc"`
	L2MPKI     []float64 `json:"l2_mpki"`
	Prefetches uint64    `json:"prefetches"`
	// SimMs is the wall-clock simulation time; 0 for cache hits.
	SimMs int64 `json:"sim_ms"`
}

// JobView is the API representation of a job.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Spec   JobSpec   `json:"spec"`
	// Cached reports that the submission was satisfied from the result
	// cache without queueing a simulation.
	Cached     bool       `json:"cached,omitempty"`
	Error      string     `json:"error,omitempty"`
	EnqueuedAt time.Time  `json:"enqueued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// Stats is the /v1/stats payload: monotonically increasing counters
// plus instantaneous gauges.
type Stats struct {
	Submitted   uint64 `json:"submitted"`   // accepted POSTs (incl. cache/dedup hits)
	Completed   uint64 `json:"completed"`   // jobs finished successfully
	Failed      uint64 `json:"failed"`      // jobs finished with an error (incl. timeouts)
	Panics      uint64 `json:"panics"`      // recovered panics inside job runs
	Rejected    uint64 `json:"rejected"`    // 429s from queue overflow
	CacheHits   uint64 `json:"cache_hits"`  // submissions satisfied by the result cache
	DedupHits   uint64 `json:"dedup_hits"`  // submissions coalesced onto an in-flight job
	Simulations uint64 `json:"simulations"` // RunMix executions actually performed
	QueueDepth  int    `json:"queue_depth"` // jobs currently waiting
	QueueCap    int    `json:"queue_cap"`   // queue capacity
	Workers     int    `json:"workers"`     // worker-pool size
	// SimParallelism is the resolved per-simulation goroutine budget
	// (sim.Config.Parallelism) applied to every job: 0 = serial; with
	// -sim-parallel=-1 this shows the auto-divided GOMAXPROCS/Workers
	// outcome.
	SimParallelism int `json:"sim_parallelism"`
	CachedKeys     int `json:"cached_keys"`  // distinct results in the cache
	JobsTracked    int `json:"jobs_tracked"` // jobs in the registry
	// Resilience state.
	Draining         bool   `json:"draining"`          // shutdown in progress; submits get 503
	CacheLoaded      uint64 `json:"cache_loaded"`      // entries restored from -cache-dir at startup
	CacheQuarantined uint64 `json:"cache_quarantined"` // corrupt cache files quarantined at startup
	// Sweep orchestration (see internal/sweep).
	Sweeps sweep.Counts `json:"sweeps"`
	// Cluster is present only when this node is part of a sharded
	// cluster (see cluster.go).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the cluster block of /v1/stats: this node's view of
// the ring plus its cross-shard traffic counters.
type ClusterStats struct {
	Self      string   `json:"self"`
	Peers     []string `json:"peers"`
	Unhealthy []string `json:"unhealthy,omitempty"` // peers with open breakers

	// Gossip membership (see internal/cluster/gossip.go). RingHash is
	// identical on every converged node; MembershipVersion is node-local.
	GossipEnabled     bool                 `json:"gossip_enabled"`
	Members           []cluster.MemberInfo `json:"members,omitempty"`
	MembershipVersion uint64               `json:"membership_version"`
	RingHash          uint64               `json:"ring_hash"`
	SelfIncarnation   uint64               `json:"self_incarnation"`
	Suspicions        uint64               `json:"suspicions"`
	Refutes           uint64               `json:"refutes"`
	ConfirmedDead     uint64               `json:"confirmed_dead"`
	RepairPulled      uint64               `json:"repair_pulled"`
	DeadRequeued      uint64               `json:"dead_requeued"`

	Proxied           uint64 `json:"proxied"`             // requests forwarded to owners
	ProxyErrors       uint64 `json:"proxy_errors"`        // forwards that failed in transport
	DegradedLocal     uint64 `json:"degraded_local"`      // owner down: computed locally
	RemoteCacheHits   uint64 `json:"remote_cache_hits"`   // results fetched from owners (cross-shard hits)
	RemoteCacheMisses uint64 `json:"remote_cache_misses"` // remote lookups that found nothing
	RemoteCells       uint64 `json:"remote_cells"`        // sweep cells executed on their owner
	CacheServed       uint64 `json:"cache_served"`        // cache entries served to peers
	Writebacks        uint64 `json:"writebacks"`          // off-owner results pushed to owners
	StolenFromPeers   uint64 `json:"stolen_from_peers"`   // cells this node stole
	StolenByPeers     uint64 `json:"stolen_by_peers"`     // cells peers stole from here
	StealExpired      uint64 `json:"steal_leases_expired"`
}

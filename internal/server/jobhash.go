package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"micromama/internal/experiment"
	"micromama/internal/sim"
)

// jobKey derives the content address of a job: the SHA-256 of a
// canonical JSON encoding of everything that determines the simulation
// outcome — mix (ordered trace names), seed, the fully resolved
// sim.Config, the controller key, and the resolved experiment.Scale.
// Two specs that resolve to the same simulation hash identically even
// if they spelled defaults differently; TimeoutMs is deliberately
// excluded because it bounds execution without changing the result.
//
// Determinism: all hashed types are flat exported-field structs, and
// encoding/json emits struct fields in declaration order, so the
// encoding is canonical without map-ordering concerns.
func jobKey(spec JobSpec, cfg sim.Config, scale experiment.Scale) string {
	canonical := struct {
		Mix        []string
		Seed       uint64
		Controller string
		Scale      experiment.Scale
		Config     sim.Config
	}{spec.Mix, spec.Seed, spec.Controller, scale, cfg}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Only unmarshalable types (func, chan) can fail here; the
		// hashed structs contain none by construction.
		panic("server: jobKey marshal: " + err.Error())
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// jobID renders the short job identifier clients see: the first 16 hex
// digits of the content hash, prefixed for greppability. Identical
// submissions therefore share a job ID by construction.
func jobID(key string) string { return "j" + key[:16] }

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"micromama/internal/experiment"
	"micromama/internal/sim"
)

// jobKey derives the content address of a job: the SHA-256 of a
// canonical JSON encoding of everything that determines the simulation
// outcome — mix (ordered trace names), seed, the fully resolved
// sim.Config, the controller key, and the resolved experiment.Scale.
// Two specs that resolve to the same simulation hash identically even
// if they spelled defaults differently; TimeoutMs is deliberately
// excluded because it bounds execution without changing the result.
//
// Determinism: all hashed types are flat exported-field structs, and
// encoding/json emits struct fields in declaration order, so the
// encoding is canonical without map-ordering concerns. A marshal
// failure (an unmarshalable value sneaking into the hashed structs)
// is returned as an error — never a panic — so a hostile or buggy
// spec degrades to an HTTP error instead of taking the process down.
func jobKey(spec JobSpec, cfg sim.Config, scale experiment.Scale) (string, error) {
	canonical := struct {
		Mix        []string
		Seed       uint64
		Controller string
		Scale      experiment.Scale
		Config     sim.Config
	}{spec.Mix, spec.Seed, spec.Controller, scale, cfg}
	b, err := json.Marshal(canonical)
	if err != nil {
		return "", fmt.Errorf("canonical job encoding: %w", err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// jobID renders the short job identifier clients see: the first 16 hex
// digits of the content hash, prefixed for greppability. Identical
// submissions therefore share a job ID by construction.
func jobID(key string) string { return "j" + key[:16] }

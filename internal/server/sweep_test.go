package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"micromama/internal/sweep"
	"micromama/internal/workload"
)

// postSweep submits a sweep spec and decodes the returned view.
func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, sweep.View) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	var view sweep.View
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode sweep view: %v", err)
		}
	}
	return resp, view
}

// getSweepView fetches one sweep's current state.
func getSweepView(t *testing.T, ts *httptest.Server, id string) sweep.View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatalf("GET sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep %s: HTTP %d", id, resp.StatusCode)
	}
	var view sweep.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode sweep view: %v", err)
	}
	return view
}

// waitSweepDone polls until the sweep reports done.
func waitSweepDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) sweep.View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if view := getSweepView(t, ts, id); view.Status == "done" {
			return view
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish within %v", id, timeout)
	return sweep.View{}
}

// sweepGridJSON builds a grid spec over fake-job seeds: one
// single-trace mix, the no-op controller, tiny scale, n seeded cells.
func sweepGridJSON(name string, n int) string {
	seeds := make([]string, n)
	for i := range seeds {
		seeds[i] = fmt.Sprint(i + 1)
	}
	return fmt.Sprintf(`{"name":%q,"grid":{"mixes":[["spec06.libquantum"]],"controllers":["no"],"scales":["tiny"],"seeds":[%s]}}`,
		name, strings.Join(seeds, ","))
}

// readSweepEvents consumes a follow=0 NDJSON result dump.
func readSweepEvents(t *testing.T, ts *httptest.Server, id, query string) ([]sweep.Event, sweep.View) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results?follow=0" + query)
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q, want application/x-ndjson", ct)
	}
	var (
		events []sweep.Event
		final  sweep.View
		ended  bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var end struct {
			End   bool       `json:"end"`
			Sweep sweep.View `json:"sweep"`
		}
		if json.Unmarshal([]byte(line), &end) == nil && end.End {
			final, ended = end.Sweep, true
			continue
		}
		var ev sweep.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if !ended {
		t.Fatal("result stream ended without the end marker")
	}
	return events, final
}

// TestSweepEndToEnd runs one sweep through the full HTTP surface:
// submit expands the grid, every cell executes exactly once, events
// stream with results attached, and stats/metrics account for it all.
func TestSweepEndToEnd(t *testing.T) {
	run, calls := countingRun()
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 8, Run: run})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, view := postSweep(t, ts, sweepGridJSON("e2e", 4))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d, want 201", resp.StatusCode)
	}
	if view.Cells != 4 || view.Status != "running" {
		t.Fatalf("submitted view = %d cells status %q, want 4 running", view.Cells, view.Status)
	}

	final := waitSweepDone(t, ts, view.ID, 10*time.Second)
	if final.Done != 4 || final.Failed != 0 || final.Deduped != 0 {
		t.Fatalf("final view done/failed/deduped = %d/%d/%d, want 4/0/0",
			final.Done, final.Failed, final.Deduped)
	}
	if calls.Load() != 4 {
		t.Errorf("simulator ran %d times, want 4", calls.Load())
	}

	events, end := readSweepEvents(t, ts, view.ID, "")
	if len(events) != 4 {
		t.Fatalf("streamed %d events, want 4", len(events))
	}
	seenCells := map[int]bool{}
	for _, ev := range events {
		if ev.Status != sweep.CellDone || len(ev.Result) == 0 || ev.Key == "" {
			t.Errorf("event %+v: want done with result and key", ev)
		}
		var res JobResult
		if err := json.Unmarshal(ev.Result, &res); err != nil || res.WS != 2.5 {
			t.Errorf("event result = %s (err %v), want the fake ws=2.5", ev.Result, err)
		}
		seenCells[ev.Cell] = true
	}
	if len(seenCells) != 4 {
		t.Errorf("events cover %d distinct cells, want 4", len(seenCells))
	}
	if end.Status != "done" {
		t.Errorf("end marker status = %q, want done", end.Status)
	}

	// Cursor resume: skipping the first two events leaves two.
	tail, _ := readSweepEvents(t, ts, view.ID, "&cursor=2")
	if len(tail) != 2 {
		t.Errorf("cursor=2 streamed %d events, want 2", len(tail))
	}

	// Every cell is also a registry-visible job.
	for _, ev := range events {
		code, body := getResult(t, ts, jobID(ev.Key))
		if code != http.StatusOK || body.Status != StatusDone {
			t.Errorf("cell job %s: HTTP %d status %q, want done", jobID(ev.Key), code, body.Status)
		}
	}

	st := getStats(t, ts)
	if st.Sweeps.Submitted != 1 || st.Sweeps.CellsDone != 4 || st.Sweeps.Active != 0 {
		t.Errorf("stats sweeps = %+v, want submitted 1, completed 4, active 0", st.Sweeps)
	}
	if v := scrapeMetric(t, ts, "mama_server_sweep_cells_completed_total"); v != 4 {
		t.Errorf("mama_server_sweep_cells_completed_total = %v, want 4", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_sweeps_active"); v != 0 {
		t.Errorf("mama_server_sweeps_active = %v, want 0", v)
	}
}

// TestSweepKeyDeterminism pins the acceptance contract "same spec →
// same ordered job-key list": expansion plus server-side resolution is
// a pure function of the spec.
func TestSweepKeyDeterminism(t *testing.T) {
	run, _ := countingRun()
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, Run: run})
	defer srv.Close()
	exec := sweepExec{srv}

	keyList := func() []string {
		spec := sweep.Spec{
			Name: "det",
			Grid: &sweep.Grid{
				Mixes:       [][]string{{"spec06.libquantum"}, {"spec06.libquantum", "spec06.sphinx3"}},
				Controllers: []string{"no", "bandit"},
				Scales:      []string{"tiny"},
				Seeds:       []uint64{1, 2},
			},
		}
		cells, err := spec.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(cells))
		for i, c := range cells {
			if keys[i], err = exec.ResolveCell(c); err != nil {
				t.Fatalf("resolve cell %d: %v", i, err)
			}
		}
		return keys
	}

	first, second := keyList(), keyList()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("key lists differ across expansions:\n%v\n%v", first, second)
	}
	distinct := map[string]bool{}
	for _, k := range first {
		distinct[k] = true
	}
	if len(distinct) != len(first) {
		t.Errorf("%d cells resolve to %d distinct keys; cells must be content-distinct",
			len(first), len(distinct))
	}
}

// figureSweepJSON replicates the fig13 remote driver's cell set at toy
// scale: the scale's deterministic mixes × all six controllers.
func figureSweepJSON(name string) string {
	var mixes []string
	for _, m := range workload.Mixes(2, 2, 7) {
		names := make([]string, len(m.Specs))
		for i, sp := range m.Specs {
			names[i] = fmt.Sprintf("%q", sp.Name)
		}
		mixes = append(mixes, "["+strings.Join(names, ",")+"]")
	}
	return fmt.Sprintf(`{"name":%q,"grid":{"mixes":[%s],"controllers":["no","bandit","bingo","pythia","mumama","mumama-fair"],"scales":["tiny"]}}`,
		name, strings.Join(mixes, ","))
}

// TestSweepWarmCacheDedupe is the acceptance criterion: a
// figure-covering sweep submitted twice against a warm cache completes
// the second time with zero simulator runs — both as an idempotent
// resubmission (same sweep) and as a fresh sweep over the same cells.
func TestSweepWarmCacheDedupe(t *testing.T) {
	run, calls := countingRun()
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 16, Run: run})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp1, v1 := postSweep(t, ts, figureSweepJSON("fig13"))
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: HTTP %d, want 201", resp1.StatusCode)
	}
	waitSweepDone(t, ts, v1.ID, 10*time.Second)
	cold := calls.Load()
	if cold != int64(v1.Cells) || cold == 0 {
		t.Fatalf("cold sweep ran %d simulations for %d cells", cold, v1.Cells)
	}

	// Same spec again: attaches to the finished sweep, zero runs.
	resp2, v2 := postSweep(t, ts, figureSweepJSON("fig13"))
	if resp2.StatusCode != http.StatusOK || v2.ID != v1.ID {
		t.Fatalf("resubmission: HTTP %d id %s, want 200 on %s", resp2.StatusCode, v2.ID, v1.ID)
	}
	if v2.Status != "done" {
		t.Errorf("resubmitted sweep status %q, want done", v2.Status)
	}

	// Same cells under a new name: a distinct sweep, satisfied entirely
	// from the warm cache at admission — done before a worker ever sees
	// it.
	resp3, v3 := postSweep(t, ts, figureSweepJSON("fig13-again"))
	if resp3.StatusCode != http.StatusCreated || v3.ID == v1.ID {
		t.Fatalf("renamed submit: HTTP %d id %s, want a new sweep", resp3.StatusCode, v3.ID)
	}
	if v3.Status != "done" || v3.Deduped != v3.Cells {
		t.Fatalf("renamed sweep status %q deduped %d/%d, want done with every cell deduped",
			v3.Status, v3.Deduped, v3.Cells)
	}
	if calls.Load() != cold {
		t.Errorf("warm resubmissions ran %d extra simulations, want 0", calls.Load()-cold)
	}

	// Deduped events still carry the cached results.
	events, _ := readSweepEvents(t, ts, v3.ID, "")
	for _, ev := range events {
		if ev.Status != sweep.CellDeduped || len(ev.Result) == 0 {
			t.Errorf("warm event %+v: want deduped with cached result attached", ev)
		}
	}
	if v := scrapeMetric(t, ts, "mama_server_sweep_cells_deduped_total"); v != float64(v3.Cells) {
		t.Errorf("mama_server_sweep_cells_deduped_total = %v, want %d", v, v3.Cells)
	}
}

// TestSweepDoesNotStarveInteractive is the fairness acceptance bound:
// with a 1000-cell sweep saturating a single worker, an interactive
// POST /v1/jobs must still complete promptly — strictly before the
// sweep drains.
func TestSweepDoesNotStarveInteractive(t *testing.T) {
	run := func(ctx context.Context, spec JobSpec) (JobResult, error) {
		time.Sleep(time.Millisecond)
		return JobResult{Mix: "fake", WS: 1}, nil
	}
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 8, MaxSweepCells: 2048, Run: run})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, sv := postSweep(t, ts, sweepGridJSON("big", 1000))
	if sv.Cells != 1000 {
		t.Fatalf("sweep expanded to %d cells, want 1000", sv.Cells)
	}

	// Give the sweep a head start so the worker is mid-sweep.
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	resp, jv := postJob(t, ts, fakeSpec(9999))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive submit: HTTP %d", resp.StatusCode)
	}
	body := waitDone(t, ts, jv.ID, 5*time.Second)
	wait := time.Since(start)
	if body.Status != StatusDone {
		t.Fatalf("interactive job finished as %q", body.Status)
	}

	after := getSweepView(t, ts, sv.ID)
	if after.Status == "done" {
		t.Fatal("sweep finished before the interactive job — starvation bound proves nothing")
	}
	// Bounded wait: the job overtook ~990+ pending cells. The generous
	// ceiling keeps slow CI honest while still catching FIFO behavior
	// (which would take the full sweep duration).
	if wait > 3*time.Second {
		t.Errorf("interactive job waited %v behind a sweep, want prompt dispatch", wait)
	}
	waitSweepDone(t, ts, sv.ID, 30*time.Second)
}

// recordingRun returns a runFunc that sleeps briefly and counts
// executions per job seed, so tests can assert exactly-once execution.
func recordingRun(d time.Duration) (runFunc, func() map[uint64]int) {
	var mu sync.Mutex
	runs := map[uint64]int{}
	run := func(ctx context.Context, spec JobSpec) (JobResult, error) {
		mu.Lock()
		runs[spec.Seed]++
		mu.Unlock()
		select {
		case <-time.After(d):
			return JobResult{Mix: "fake", WS: 1}, nil
		case <-ctx.Done():
			return JobResult{}, ctx.Err()
		}
	}
	snapshot := func() map[uint64]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[uint64]int, len(runs))
		for k, v := range runs {
			out[k] = v
		}
		return out
	}
	return run, snapshot
}

// TestSweepRestartResume is the chaos acceptance criterion: kill the
// server mid-sweep, restart over the same cache dir, and the sweep
// finishes with no completed cell recomputed and nothing double-run.
func TestSweepRestartResume(t *testing.T) {
	dir := t.TempDir()
	const cells = 40

	run1, _ := recordingRun(2 * time.Millisecond)
	srv1 := mustNew(t, Config{Workers: 2, QueueDepth: 8, CacheDir: dir, Run: run1})
	ts1 := httptest.NewServer(srv1.Handler())

	_, sv := postSweep(t, ts1, sweepGridJSON("resume", cells))
	if sv.Cells != cells {
		t.Fatalf("sweep expanded to %d cells, want %d", sv.Cells, cells)
	}

	// Let part of the sweep complete, then take the server down
	// gracefully (SIGTERM path: drain in-flight cells, flush stores).
	deadline := time.Now().Add(10 * time.Second)
	for getSweepView(t, ts1, sv.ID).Done < 8 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never made initial progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	run2, snap2 := recordingRun(2 * time.Millisecond)
	srv2 := mustNew(t, Config{Workers: 2, QueueDepth: 8, CacheDir: dir, Run: run2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// The sweep is already back, resumed from the crash-safe store.
	resumed := getSweepView(t, ts2, sv.ID)
	doneBefore := resumed.Done
	if doneBefore < 8 {
		t.Fatalf("restarted server restored %d done cells, want >= 8", doneBefore)
	}
	st := getStats(t, ts2)
	if st.Sweeps.Resumed != 1 {
		t.Fatalf("stats sweeps_resumed = %d, want 1", st.Sweeps.Resumed)
	}

	final := waitSweepDone(t, ts2, sv.ID, 15*time.Second)
	if final.Done+final.Deduped != cells || final.Failed != 0 {
		t.Fatalf("final done+deduped/failed = %d/%d, want %d/0",
			final.Done+final.Deduped, final.Failed, cells)
	}

	// No completed cell recomputed: the second server ran exactly the
	// cells the first one had not finished, each exactly once.
	runs2 := snap2()
	if len(runs2) != cells-doneBefore {
		t.Errorf("second server ran %d cells, want %d (= %d total - %d already done)",
			len(runs2), cells-doneBefore, cells, doneBefore)
	}
	for seed, n := range runs2 {
		if n != 1 {
			t.Errorf("seed %d ran %d times on the restarted server, want once", seed, n)
		}
	}

	// The streamed log on the restarted server covers every cell
	// exactly once (dedupe by cell index holds).
	events, _ := readSweepEvents(t, ts2, sv.ID, "")
	cellsSeen := map[int]int{}
	for _, ev := range events {
		cellsSeen[ev.Cell]++
	}
	if len(cellsSeen) != cells {
		t.Errorf("event log covers %d cells, want %d", len(cellsSeen), cells)
	}
}

// TestSweepWorkerKillChaos injects worker death on a third of cell
// dispatches: killed cells bounce back to pending and re-dispatch, the
// sweep still completes every cell exactly once, and nothing fails.
func TestSweepWorkerKillChaos(t *testing.T) {
	enableFault(t, "server/sweep/worker-kill", "every:3")
	run, snap := recordingRun(time.Millisecond)
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 8, Run: run})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const cells = 12
	_, sv := postSweep(t, ts, sweepGridJSON("chaos", cells))
	final := waitSweepDone(t, ts, sv.ID, 15*time.Second)
	if final.Done != cells || final.Failed != 0 {
		t.Fatalf("done/failed = %d/%d, want %d/0 despite injected kills",
			final.Done, final.Failed, cells)
	}
	runs := snap()
	if len(runs) != cells {
		t.Errorf("%d distinct cells executed, want %d", len(runs), cells)
	}
	for seed, n := range runs {
		if n != 1 {
			t.Errorf("seed %d executed %d times, want exactly once", seed, n)
		}
	}
}

// TestSweepPersistWriteFault: persistent store failures are counted
// and contained — the sweep still completes in memory and nothing is
// written.
func TestSweepPersistWriteFault(t *testing.T) {
	enableFault(t, "server/sweep/persist-write", "always")
	dir := t.TempDir()
	run, _ := countingRun()
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, sv := postSweep(t, ts, sweepGridJSON("wf", 3))
	waitSweepDone(t, ts, sv.ID, 10*time.Second)
	if v := scrapeMetric(t, ts, "mama_server_sweep_persist_errors_total"); v < 1 {
		t.Errorf("mama_server_sweep_persist_errors_total = %v, want >= 1", v)
	}
	srv.Close()
	if files, _ := filepath.Glob(filepath.Join(dir, "sweeps", "*.json")); len(files) != 0 {
		t.Errorf("sweep records written despite injected failures: %v", files)
	}
}

// TestSweepPersistReadFault: unreadable sweep records are quarantined
// at startup — counted, renamed aside, and the server boots clean.
func TestSweepPersistReadFault(t *testing.T) {
	dir := t.TempDir()
	run1, _ := countingRun()
	srv1 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run1})
	ts1 := httptest.NewServer(srv1.Handler())
	_, sv := postSweep(t, ts1, sweepGridJSON("rf", 2))
	waitSweepDone(t, ts1, sv.ID, 10*time.Second)
	ts1.Close()
	srv1.Close()

	enableFault(t, "server/sweep/persist-read", "always")
	run2, _ := countingRun()
	srv2 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if v := scrapeMetric(t, ts2, "mama_server_sweep_persist_quarantined_total"); v != 1 {
		t.Errorf("mama_server_sweep_persist_quarantined_total = %v, want 1", v)
	}
	resp, err := http.Get(ts2.URL + "/v1/sweeps/" + sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("quarantined sweep served HTTP %d, want 404", resp.StatusCode)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "sweeps", "*.quarantine")); len(files) != 1 {
		t.Errorf("quarantined files = %v, want exactly one", files)
	}
}

// TestSweepStreamSSE: the same result stream framed as server-sent
// events when the client asks for it.
func TestSweepStreamSSE(t *testing.T) {
	run, _ := countingRun()
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, Run: run})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, sv := postSweep(t, ts, sweepGridJSON("sse", 2))
	waitSweepDone(t, ts, sv.ID, 10*time.Second)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+sv.ID+"/results?follow=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if strings.Count(body, "id: ") != 2 {
		t.Errorf("SSE stream has %d id: frames, want 2:\n%s", strings.Count(body, "id: "), body)
	}
	if !strings.Contains(body, "event: end") {
		t.Errorf("SSE stream missing the end frame:\n%s", body)
	}
}

// TestSweepSubmitValidation: malformed and unsatisfiable specs are
// rejected with 400 and a reason, not half-admitted.
func TestSweepSubmitValidation(t *testing.T) {
	run, calls := countingRun()
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, MaxSweepCells: 8, Run: run})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"bad json", `{"grid":`},
		{"unknown field", `{"grids":{}}`},
		{"zero cells", `{"name":"x"}`},
		{"unknown trace", `{"grid":{"mixes":[["nope"]],"controllers":["no"]}}`},
		{"unknown controller", `{"grid":{"mixes":[["spec06.libquantum"]],"controllers":["nope"]}}`},
		{"over budget", sweepGridJSON("big", 9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postSweep(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("HTTP %d, want 400", resp.StatusCode)
			}
		})
	}
	if calls.Load() != 0 {
		t.Errorf("rejected specs ran %d simulations", calls.Load())
	}
	if st := getStats(t, ts); st.Sweeps.Total != 0 {
		t.Errorf("rejected specs left %d sweeps tracked", st.Sweeps.Total)
	}
}

package server

import (
	"sort"
	"sync"
)

// resultCache is the content-addressed result store: completed job
// results keyed by the canonical job hash (see jobhash.go). Results are
// immutable once stored, so a hit can be served without re-simulating —
// the cache IS the service's memoization layer, and it is shared by
// every worker. Entries are never evicted; a result is a few hundred
// bytes and the key space is bounded by distinct (mix, config,
// controller, scale) tuples actually requested.
type resultCache struct {
	mu sync.RWMutex
	m  map[string]JobResult
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[string]JobResult)}
}

// get returns the cached result for key, if any.
func (c *resultCache) get(key string) (JobResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// put stores a completed result. First write wins: identical keys mean
// identical simulations, so a concurrent duplicate (only possible after
// a failed job was retried) carries the same payload.
func (c *resultCache) put(key string, res JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = res
	}
}

// size returns the number of distinct cached results.
func (c *resultCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// keysSorted snapshots every cached key in lexicographic order. The
// anti-entropy repair scan pages through this with a cursor, so the
// order must be stable across calls on an append-only cache.
func (c *resultCache) keysSorted() []string {
	c.mu.RLock()
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	c.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Command clustersmoke is the `make cluster-smoke` gate: a three-node
// sharded mamaserved cluster driven end to end with real tiny
// simulations. A cold sweep submitted to node A is routed across the
// ring (every cell simulated exactly once cluster-wide), then the same
// cells are resubmitted under a new sweep name to node C — the warm
// pass must complete with zero new simulations anywhere, served by
// cross-shard cache fetches from the owning nodes. It exercises the
// whole cluster surface (ring routing, remote execution, distributed
// cache lookup) in-process in a few seconds.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"time"

	"micromama/internal/client"
	"micromama/internal/cluster"
	"micromama/internal/server"
	"micromama/internal/sweep"
)

// spec expands to an eight-cell tiny-scale sweep (two mixes × two
// controllers × two seeds) with a small instruction target so real
// simulations stay fast while still spreading keys across all shards.
func spec(name string) sweep.Spec {
	return sweep.Spec{
		Name: name,
		Grid: &sweep.Grid{
			Mixes:       [][]string{{"spec06.libquantum"}, {"spec06.sphinx3"}},
			Controllers: []string{"no", "bandit"},
			Seeds:       []uint64{1, 2},
			Scales:      []string{"tiny"},
			Target:      60_000,
		},
	}
}

type node struct {
	srv *server.Server
	ts  *httptest.Server
	url string
	c   *client.Client
}

// startCluster binds n loopback listeners first so every node knows the
// full peer list before any server starts — the same ring on every
// node, no discovery protocol.
func startCluster(n int) ([]*node, error) {
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listen: %w", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i := range nodes {
		cl, err := cluster.New(urls[i], urls, cluster.Options{})
		if err != nil {
			return nil, fmt.Errorf("cluster node %d: %w", i, err)
		}
		srv, err := server.New(server.Config{
			Workers:    2,
			QueueDepth: 64,
			Cluster:    cl,
			// Eager owner dispatch: every cell runs on the node owning
			// its key, so the warm pass finds each result exactly where
			// the ring says it lives (no async write-back to wait on).
			RemotePeerSlots:    32,
			RemotePollInterval: 5 * time.Millisecond,
			StealInterval:      -1, // stealing off: determinism over latency here
		})
		if err != nil {
			return nil, fmt.Errorf("server node %d: %w", i, err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		nodes[i] = &node{srv: srv, ts: ts, url: urls[i],
			c: client.New(urls[i], client.Options{Timeout: 2 * time.Minute})}
	}
	return nodes, nil
}

type stats struct {
	Simulations uint64 `json:"simulations"`
	Cluster     *struct {
		Proxied         uint64 `json:"proxied"`
		RemoteCells     uint64 `json:"remote_cells"`
		RemoteCacheHits uint64 `json:"remote_cache_hits"`
		CacheServed     uint64 `json:"cache_served"`
	} `json:"cluster"`
}

func getStats(ctx context.Context, nd *node) (stats, error) {
	resp, err := nd.c.Get(ctx, "/v1/stats")
	if err != nil {
		return stats{}, err
	}
	var st stats
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return stats{}, err
	}
	if st.Cluster == nil {
		return stats{}, fmt.Errorf("no cluster block in /v1/stats")
	}
	return st, nil
}

func totalSims(ctx context.Context, nodes []*node) (uint64, error) {
	var total uint64
	for _, nd := range nodes {
		st, err := getStats(ctx, nd)
		if err != nil {
			return 0, err
		}
		total += st.Simulations
	}
	return total, nil
}

func run() error {
	nodes, err := startCluster(3)
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.srv.Close()
		}
	}()
	a, c := nodes[0], nodes[2]

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Phase 1: cold sweep against node A. The ring routes each cell to
	// its owning node; cluster-wide each cell simulates exactly once.
	coldStart := time.Now()
	v, err := a.c.SubmitSweep(ctx, spec("cluster-smoke"))
	if err != nil {
		return fmt.Errorf("cold submit: %w", err)
	}
	fmt.Printf("cluster-smoke: submitted %s (%d cells) to node A\n", v.ID, v.Cells)
	final, err := a.c.StreamSweepResults(ctx, v.ID, func(ev sweep.Event) error { return nil })
	if err != nil {
		return fmt.Errorf("cold stream: %w", err)
	}
	coldDur := time.Since(coldStart)
	if final.Done != v.Cells || final.Failed != 0 {
		return fmt.Errorf("cold sweep: done %d failed %d, want %d/0", final.Done, final.Failed, v.Cells)
	}
	simsAfterCold, err := totalSims(ctx, nodes)
	if err != nil {
		return err
	}
	if simsAfterCold != uint64(v.Cells) {
		return fmt.Errorf("cold sweep ran %d simulations cluster-wide, want exactly %d (one per cell)",
			simsAfterCold, v.Cells)
	}
	aStats, err := getStats(ctx, a)
	if err != nil {
		return err
	}
	if aStats.Cluster.RemoteCells == 0 {
		return fmt.Errorf("node A executed no cells remotely; routing is not happening")
	}
	fmt.Printf("cluster-smoke: cold sweep done in %v (%d cells, %d sims cluster-wide, %d routed off A)\n",
		coldDur.Round(time.Millisecond), final.Done, simsAfterCold, aStats.Cluster.RemoteCells)

	// Phase 2: same cells, new sweep name, submitted to node C. Every
	// result lives on its owning shard; C must assemble the sweep from
	// cross-shard cache fetches without a single new simulation.
	warmStart := time.Now()
	warm, err := c.c.SubmitSweep(ctx, spec("cluster-smoke-warm"))
	if err != nil {
		return fmt.Errorf("warm submit: %w", err)
	}
	warmDur := time.Since(warmStart)
	if warm.Status != "done" || warm.Deduped != v.Cells {
		return fmt.Errorf("warm sweep: status %q deduped %d, want done with all %d cells deduped",
			warm.Status, warm.Deduped, v.Cells)
	}
	simsAfterWarm, err := totalSims(ctx, nodes)
	if err != nil {
		return err
	}
	if simsAfterWarm != simsAfterCold {
		return fmt.Errorf("warm sweep ran %d new simulations, want 0",
			simsAfterWarm-simsAfterCold)
	}
	cStats, err := getStats(ctx, c)
	if err != nil {
		return err
	}
	if cStats.Cluster.RemoteCacheHits == 0 {
		return fmt.Errorf("node C reports zero cross-shard cache hits; warm pass was not served by the ring")
	}
	fmt.Printf("cluster-smoke: warm sweep to node C answered in %v (%d cells deduped, %d cross-shard cache hits, 0 new simulations)\n",
		warmDur.Round(time.Millisecond), warm.Deduped, cStats.Cluster.RemoteCacheHits)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cluster-smoke: PASS")
}

// Command clustersmoke is the `make cluster-smoke` gate: a three-node
// sharded mamaserved cluster (gossip membership enabled) driven end to
// end with real tiny simulations. A cold sweep submitted to node A is
// routed across the ring (every cell simulated exactly once
// cluster-wide), then the same cells are resubmitted under a new sweep
// name to node C — the warm pass must complete with zero new
// simulations anywhere, served by cross-shard cache fetches from the
// owning nodes. A final churn phase kills node B mid-sweep (the SWIM
// detector must confirm it dead and the sweep must still finish every
// cell exactly once), then restarts it and asserts it rejoins by
// gossip alone — bumped incarnation, repaired cache — until a warm
// resubmission against the rejoined node costs zero new simulations.
// It exercises the whole cluster surface (ring routing, remote
// execution, distributed cache lookup, failure detection, anti-entropy
// repair) in-process in a few seconds.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"time"

	"micromama/internal/client"
	"micromama/internal/cluster"
	"micromama/internal/server"
	"micromama/internal/sweep"
)

// spec expands to an eight-cell tiny-scale sweep (two mixes × two
// controllers × two seeds) with a small instruction target so real
// simulations stay fast while still spreading keys across all shards.
func spec(name string, seeds ...uint64) sweep.Spec {
	return sweep.Spec{
		Name: name,
		Grid: &sweep.Grid{
			Mixes:       [][]string{{"spec06.libquantum"}, {"spec06.sphinx3"}},
			Controllers: []string{"no", "bandit"},
			Seeds:       seeds,
			Scales:      []string{"tiny"},
			Target:      60_000,
		},
	}
}

// gossipOpts are the fast-but-CI-safe SWIM timings the smoke cluster
// runs with: quick enough that confirm-dead lands in well under a
// second, slow enough that a loaded runner never false-positives a
// live node.
func gossipOpts(urls []string) cluster.GossipOptions {
	return cluster.GossipOptions{
		Interval:       25 * time.Millisecond,
		SuspectTimeout: 300 * time.Millisecond,
		SyncInterval:   100 * time.Millisecond,
		Seeds:          urls,
	}
}

type node struct {
	srv *server.Server
	ts  *httptest.Server
	url string
	c   *client.Client
}

// startNode builds one gossip-enabled cluster member on an
// already-bound listener. The same constructor serves initial boot and
// the churn-phase restart, so a restarted node differs only by what
// gossip teaches it (its own tombstone, hence the incarnation bump).
func startNode(ln net.Listener, self string, urls []string) (*node, error) {
	cl, err := cluster.New(self, urls, cluster.Options{})
	if err != nil {
		return nil, fmt.Errorf("cluster %s: %w", self, err)
	}
	cl.EnableGossip(gossipOpts(urls))
	srv, err := server.New(server.Config{
		Workers:    2,
		QueueDepth: 64,
		Cluster:    cl,
		// Eager owner dispatch: every cell runs on the node owning
		// its key, so the warm pass finds each result exactly where
		// the ring says it lives (no async write-back to wait on).
		RemotePeerSlots:    32,
		RemotePollInterval: 5 * time.Millisecond,
		StealInterval:      -1, // stealing off: determinism over latency here
	})
	if err != nil {
		return nil, fmt.Errorf("server %s: %w", self, err)
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	return &node{srv: srv, ts: ts, url: self,
		c: client.New(self, client.Options{Timeout: 2 * time.Minute})}, nil
}

// startCluster binds n loopback listeners first so every node knows the
// full bootstrap peer list before any server starts; from there on
// membership is maintained by gossip, not the static list.
func startCluster(n int) ([]*node, []string, error) {
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("listen: %w", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i := range nodes {
		nd, err := startNode(lns[i], urls[i], urls)
		if err != nil {
			return nil, nil, err
		}
		nodes[i] = nd
	}
	return nodes, urls, nil
}

// relisten rebinds a specific loopback address the kernel may still
// hold in TIME_WAIT for a moment after the old listener closed.
func relisten(addr string) (net.Listener, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("rebind %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type stats struct {
	Simulations uint64 `json:"simulations"`
	Cluster     *struct {
		Peers           []string `json:"peers"`
		RingHash        uint64   `json:"ring_hash"`
		SelfIncarnation uint64   `json:"self_incarnation"`
		ConfirmedDead   uint64   `json:"confirmed_dead"`
		RepairPulled    uint64   `json:"repair_pulled"`
		Proxied         uint64   `json:"proxied"`
		RemoteCells     uint64   `json:"remote_cells"`
		RemoteCacheHits uint64   `json:"remote_cache_hits"`
		CacheServed     uint64   `json:"cache_served"`
	} `json:"cluster"`
}

func getStats(ctx context.Context, nd *node) (stats, error) {
	resp, err := nd.c.Get(ctx, "/v1/stats")
	if err != nil {
		return stats{}, err
	}
	var st stats
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return stats{}, err
	}
	if st.Cluster == nil {
		return stats{}, fmt.Errorf("no cluster block in /v1/stats")
	}
	return st, nil
}

func totalSims(ctx context.Context, nodes []*node) (uint64, error) {
	var total uint64
	for _, nd := range nodes {
		st, err := getStats(ctx, nd)
		if err != nil {
			return 0, err
		}
		total += st.Simulations
	}
	return total, nil
}

// waitCluster polls every node's /v1/stats until each sees the
// expected ring size and all ring fingerprints agree.
func waitCluster(ctx context.Context, nodes []*node, size int, timeout time.Duration, what string) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		var hashes []uint64
		for _, nd := range nodes {
			st, err := getStats(ctx, nd)
			if err != nil {
				ok = false
				break
			}
			if len(st.Cluster.Peers)+1 != size {
				ok = false
				break
			}
			hashes = append(hashes, st.Cluster.RingHash)
		}
		if ok {
			for _, h := range hashes {
				if h != hashes[0] {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: membership did not converge to %d nodes within %v", what, size, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func run() error {
	nodes, urls, err := startCluster(3)
	if err != nil {
		return err
	}
	defer func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.srv.Close()
		}
	}()
	a, c := nodes[0], nodes[2]

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	if err := waitCluster(ctx, nodes, 3, 10*time.Second, "bootstrap"); err != nil {
		return err
	}

	// Phase 1: cold sweep against node A. The ring routes each cell to
	// its owning node; cluster-wide each cell simulates exactly once.
	coldStart := time.Now()
	v, err := a.c.SubmitSweep(ctx, spec("cluster-smoke", 1, 2))
	if err != nil {
		return fmt.Errorf("cold submit: %w", err)
	}
	fmt.Printf("cluster-smoke: submitted %s (%d cells) to node A\n", v.ID, v.Cells)
	final, err := a.c.StreamSweepResults(ctx, v.ID, func(ev sweep.Event) error { return nil })
	if err != nil {
		return fmt.Errorf("cold stream: %w", err)
	}
	coldDur := time.Since(coldStart)
	if final.Done != v.Cells || final.Failed != 0 {
		return fmt.Errorf("cold sweep: done %d failed %d, want %d/0", final.Done, final.Failed, v.Cells)
	}
	simsAfterCold, err := totalSims(ctx, nodes)
	if err != nil {
		return err
	}
	if simsAfterCold != uint64(v.Cells) {
		return fmt.Errorf("cold sweep ran %d simulations cluster-wide, want exactly %d (one per cell)",
			simsAfterCold, v.Cells)
	}
	aStats, err := getStats(ctx, a)
	if err != nil {
		return err
	}
	if aStats.Cluster.RemoteCells == 0 {
		return fmt.Errorf("node A executed no cells remotely; routing is not happening")
	}
	fmt.Printf("cluster-smoke: cold sweep done in %v (%d cells, %d sims cluster-wide, %d routed off A)\n",
		coldDur.Round(time.Millisecond), final.Done, simsAfterCold, aStats.Cluster.RemoteCells)

	// Phase 2: same cells, new sweep name, submitted to node C. Every
	// result lives on its owning shard; C must assemble the sweep from
	// cross-shard cache fetches without a single new simulation.
	warmStart := time.Now()
	warm, err := c.c.SubmitSweep(ctx, spec("cluster-smoke-warm", 1, 2))
	if err != nil {
		return fmt.Errorf("warm submit: %w", err)
	}
	warmDur := time.Since(warmStart)
	if warm.Status != "done" || warm.Deduped != v.Cells {
		return fmt.Errorf("warm sweep: status %q deduped %d, want done with all %d cells deduped",
			warm.Status, warm.Deduped, v.Cells)
	}
	simsAfterWarm, err := totalSims(ctx, nodes)
	if err != nil {
		return err
	}
	if simsAfterWarm != simsAfterCold {
		return fmt.Errorf("warm sweep ran %d new simulations, want 0",
			simsAfterWarm-simsAfterCold)
	}
	cStats, err := getStats(ctx, c)
	if err != nil {
		return err
	}
	if cStats.Cluster.RemoteCacheHits == 0 {
		return fmt.Errorf("node C reports zero cross-shard cache hits; warm pass was not served by the ring")
	}
	fmt.Printf("cluster-smoke: warm sweep to node C answered in %v (%d cells deduped, %d cross-shard cache hits, 0 new simulations)\n",
		warmDur.Round(time.Millisecond), warm.Deduped, cStats.Cluster.RemoteCacheHits)

	// Phase 3: churn. Kill node B mid-sweep; SWIM must confirm it dead,
	// the sweep must still finish every cell exactly once, and a
	// restarted B must rejoin by gossip alone — bumped incarnation,
	// cache repaired by anti-entropy — until a warm resubmission
	// against B costs zero new simulations.
	b := nodes[1]
	bAddr := b.url[len("http://"):]
	churn, err := a.c.SubmitSweep(ctx, spec("cluster-smoke-churn", 3, 4))
	if err != nil {
		return fmt.Errorf("churn submit: %w", err)
	}
	// Wait for the sweep to actually be in flight before pulling the
	// plug, so the kill interrupts live dispatch rather than an idle
	// queue.
	for deadline := time.Now().Add(5 * time.Second); ; {
		resp, err := a.c.Get(ctx, "/v1/sweeps/"+churn.ID)
		if err != nil {
			return fmt.Errorf("churn view: %w", err)
		}
		var view sweep.View
		if err := json.Unmarshal(resp.Body, &view); err != nil {
			return fmt.Errorf("churn view: %w", err)
		}
		if view.Running > 0 || view.Done > 0 || view.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("churn sweep never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killAt := time.Now()
	b.ts.Close()
	b.srv.Close()
	fmt.Printf("cluster-smoke: killed node B mid-sweep (%s)\n", b.url)

	// Survivors must converge on a two-node ring via suspect →
	// confirm-dead within the suspect timeout plus probing/CI slack.
	survivors := []*node{a, c}
	if err := waitCluster(ctx, survivors, 2, 10*time.Second, "confirm-dead"); err != nil {
		return err
	}
	for _, nd := range survivors {
		st, err := getStats(ctx, nd)
		if err != nil {
			return err
		}
		if st.Cluster.ConfirmedDead == 0 {
			return fmt.Errorf("survivor %s converged without confirming B dead", nd.url)
		}
	}
	fmt.Printf("cluster-smoke: survivors confirmed B dead in %v\n",
		time.Since(killAt).Round(time.Millisecond))

	// The orphaned sweep must still complete: every cell terminal
	// exactly once, none failed — B's in-flight cells are re-routed to
	// the survivors.
	terminal := make(map[int]int)
	churnFinal, err := a.c.StreamSweepResults(ctx, churn.ID, func(ev sweep.Event) error {
		terminal[ev.Cell]++
		return nil
	})
	if err != nil {
		return fmt.Errorf("churn stream: %w", err)
	}
	if churnFinal.Done != churn.Cells || churnFinal.Failed != 0 {
		return fmt.Errorf("churn sweep: done %d failed %d, want %d/0", churnFinal.Done, churnFinal.Failed, churn.Cells)
	}
	if len(terminal) != churn.Cells {
		return fmt.Errorf("churn sweep emitted terminal events for %d cells, want %d", len(terminal), churn.Cells)
	}
	for cell, n := range terminal {
		if n != 1 {
			return fmt.Errorf("churn cell %d completed %d times, want exactly once", cell, n)
		}
	}
	fmt.Printf("cluster-smoke: churn sweep finished on the survivors (%d cells exactly once, 0 failed)\n",
		churnFinal.Done)

	// Restart B on the same address with the same config. It must
	// rejoin purely by gossip: learn its own tombstone, refute it with
	// a bumped incarnation, and pull back every key it owns via
	// anti-entropy repair.
	ln, err := relisten(bAddr)
	if err != nil {
		return err
	}
	nb, err := startNode(ln, b.url, urls)
	if err != nil {
		return fmt.Errorf("restart B: %w", err)
	}
	nodes[1] = nb
	if err := waitCluster(ctx, nodes, 3, 10*time.Second, "rejoin"); err != nil {
		return err
	}
	// Repair runs right after the rejoin; wait until the pull counter
	// is nonzero and has stopped moving before trusting B's cache.
	var pulled uint64
	stable := 0
	for deadline := time.Now().Add(15 * time.Second); stable < 5; {
		st, err := getStats(ctx, nb)
		if err != nil {
			return err
		}
		if st.Cluster.SelfIncarnation == 0 {
			return fmt.Errorf("restarted B rejoined without bumping its incarnation")
		}
		if st.Cluster.RepairPulled > 0 && st.Cluster.RepairPulled == pulled {
			stable++
		} else {
			stable = 0
		}
		pulled = st.Cluster.RepairPulled
		if time.Now().After(deadline) {
			return fmt.Errorf("anti-entropy repair never settled (pulled %d)", pulled)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("cluster-smoke: B rejoined in %v with bumped incarnation and %d repaired cache entries\n",
		time.Since(killAt).Round(time.Millisecond), pulled)

	// Final warm pass, submitted to the rejoined node: the churn cells
	// must all dedupe against B's repaired cache and its peers — zero
	// new simulations anywhere.
	simsBefore, err := totalSims(ctx, nodes)
	if err != nil {
		return err
	}
	rewarm, err := nb.c.SubmitSweep(ctx, spec("cluster-smoke-rewarm", 3, 4))
	if err != nil {
		return fmt.Errorf("rewarm submit: %w", err)
	}
	if rewarm.Status != "done" || rewarm.Deduped != churn.Cells {
		return fmt.Errorf("rewarm sweep: status %q deduped %d, want done with all %d cells deduped",
			rewarm.Status, rewarm.Deduped, churn.Cells)
	}
	simsAfter, err := totalSims(ctx, nodes)
	if err != nil {
		return err
	}
	if simsAfter != simsBefore {
		return fmt.Errorf("rewarm sweep ran %d new simulations after B rejoined, want 0", simsAfter-simsBefore)
	}
	fmt.Printf("cluster-smoke: warm resubmission to rejoined B deduped %d cells with 0 new simulations\n",
		rewarm.Deduped)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cluster-smoke: PASS")
}

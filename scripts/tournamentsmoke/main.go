// Command tournamentsmoke is the `make tournament-smoke` gate: the
// controller tournament driven end to end in one process, in seconds.
//
// It asserts, in order:
//  1. Engine dispatch: a 2-core PhaseSelect simulation at parallelism 2
//     runs on the parallel epoch path, while the identical CoordRL
//     simulation falls back to serial (its coordination is cross-core
//     by design).
//  2. A tiny tournament (3 controllers × 2 mixes × 1 seed) submitted as
//     a sweep to an in-process mamaserved produces a complete
//     leaderboard, and aggregating the same cell results twice yields
//     the identical ranking (deterministic leaderboard).
//  3. A restart over the same cache dir followed by a warm resubmission
//     of the same cells completes with zero new simulations, and its
//     leaderboard matches the cold one.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"micromama/internal/client"
	"micromama/internal/experiment"
	"micromama/internal/server"
	"micromama/internal/sim"
	"micromama/internal/sweep"
	"micromama/internal/tournament"
	"micromama/internal/workload"
)

// tournamentSpec is the 3×2×1 tournament: one core-local family
// (phase-select), one serial-fallback family (coord-rl), and the
// paper's bandit as the incumbent, over two tiny 2-core mixes.
func tournamentSpec() tournament.Spec {
	scale := experiment.ScaleTiny
	scale.MixCount = 2
	return tournament.Spec{
		Controllers: []string{"bandit", "phase-select", "coord-rl"},
		CoreCounts:  []int{2},
		Seeds:       1,
		ScaleName:   "tiny",
		Scale:       scale,
		Target:      60_000,
	}
}

// assertPaths pins the engine dispatch for the two new families by
// running each directly at parallelism 2 on a 2-core system.
func assertPaths() error {
	if runtime.GOMAXPROCS(0) < 2 {
		// The parallel engine declines on single-proc hosts; the path
		// assertion needs at least two.
		runtime.GOMAXPROCS(2)
	}
	run := func(key string) (*sim.System, error) {
		ctrl, err := experiment.MakeController(key, experiment.Options{Step: 150})
		if err != nil {
			return nil, err
		}
		var traces []string = []string{"spec06.libquantum", "spec06.mcf"}
		mix := workload.Mix{}
		for _, name := range traces {
			sp, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			mix.Specs = append(mix.Specs, sp)
		}
		cfg := sim.DefaultConfig(2)
		cfg.Parallelism = 2
		sys, err := sim.New(cfg, mix.Traces(), ctrl)
		if err != nil {
			return nil, err
		}
		sys.Run(60_000, 60_000*14)
		return sys, nil
	}

	ps, err := run("phase-select")
	if err != nil {
		return fmt.Errorf("phase-select run: %w", err)
	}
	if ps.ParallelEpochs() == 0 {
		return fmt.Errorf("phase-select ran 0 parallel epochs at parallelism 2 (workers %d); it must take the parallel path",
			ps.ParallelWorkers())
	}
	cr, err := run("coord-rl")
	if err != nil {
		return fmt.Errorf("coord-rl run: %w", err)
	}
	if cr.ParallelEpochs() != 0 {
		return fmt.Errorf("coord-rl ran %d parallel epochs; its cross-core coordination must fall back to serial",
			cr.ParallelEpochs())
	}
	fmt.Printf("tournament-smoke: paths ok (phase-select parallel epochs %d, coord-rl 0)\n",
		ps.ParallelEpochs())
	return nil
}

// runTournament submits the tournament's cells as a sweep and returns
// the streamed per-cell results.
func runTournament(ctx context.Context, c *client.Client, spec sweep.Spec, cellCount int) (map[int]tournament.CellResult, sweep.View, error) {
	v, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		return nil, sweep.View{}, fmt.Errorf("submit: %w", err)
	}
	if v.Cells != cellCount {
		return nil, sweep.View{}, fmt.Errorf("sweep has %d cells, want %d", v.Cells, cellCount)
	}
	results := make(map[int]tournament.CellResult)
	final, err := c.StreamSweepResults(ctx, v.ID, func(ev sweep.Event) error {
		switch ev.Status {
		case sweep.CellDone, sweep.CellDeduped:
			var res tournament.CellResult
			if jerr := json.Unmarshal(ev.Result, &res); jerr != nil {
				return fmt.Errorf("cell %d: %w", ev.Cell, jerr)
			}
			results[ev.Cell] = res
		case sweep.CellFailed:
			return fmt.Errorf("cell %d failed: %s", ev.Cell, ev.Error)
		}
		return nil
	})
	if err != nil {
		return nil, sweep.View{}, fmt.Errorf("stream: %w", err)
	}
	if len(results) != cellCount {
		return nil, sweep.View{}, fmt.Errorf("streamed %d of %d cell results", len(results), cellCount)
	}
	return results, final, nil
}

// checkReport asserts the leaderboard is complete: every controller
// present, ranked, with the full cell count aggregated.
func checkReport(rep *tournament.Report, spec tournament.Spec) error {
	if len(rep.Rows) != len(spec.Controllers) {
		return fmt.Errorf("leaderboard has %d rows, want %d", len(rep.Rows), len(spec.Controllers))
	}
	cellsPer := spec.Scale.MixCount * len(spec.CoreCounts) * spec.Seeds
	for _, row := range rep.Rows {
		if row.Cells != cellsPer {
			return fmt.Errorf("%s aggregated %d cells, want %d", row.Controller, row.Cells, cellsPer)
		}
		if row.MeanWS <= 0 {
			return fmt.Errorf("%s mean WS = %g", row.Controller, row.MeanWS)
		}
	}
	// The eligibility column must match the families' contracts.
	for _, row := range rep.Rows {
		switch row.Controller {
		case "phase-select", "bandit":
			if !row.CoreLocal {
				return fmt.Errorf("%s not marked core-local in the leaderboard", row.Controller)
			}
		case "coord-rl":
			if row.CoreLocal {
				return fmt.Errorf("coord-rl marked core-local; it must not be")
			}
		}
	}
	return nil
}

func run() error {
	if err := assertPaths(); err != nil {
		return err
	}

	spec := tournamentSpec()
	sweepSpec, metas, err := spec.SweepSpec()
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "tournamentsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Phase 1: cold tournament on a fresh server.
	srv1, err := server.New(server.Config{Workers: 2, QueueDepth: 16, CacheDir: dir})
	if err != nil {
		return fmt.Errorf("server 1: %w", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL, client.Options{Timeout: 2 * time.Minute})

	results, final, err := runTournament(ctx, c1, sweepSpec, len(metas))
	if err != nil {
		return fmt.Errorf("cold tournament: %w", err)
	}
	rep := spec.Aggregate(metas, results)
	if err := checkReport(rep, spec); err != nil {
		return fmt.Errorf("cold leaderboard: %w", err)
	}
	// Deterministic leaderboard: aggregating the same cells again must
	// reproduce the identical report (ranking, metrics, win matrix).
	if again := spec.Aggregate(metas, results); again.String() != rep.String() {
		return fmt.Errorf("aggregation not deterministic:\n%s\nvs\n%s", rep, again)
	}
	fmt.Printf("tournament-smoke: cold tournament done (%d cells, winner %s)\n",
		final.Done+final.Deduped, rep.Rows[0].Controller)

	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}

	// Phase 2: restart over the same cache dir; the same tournament
	// under a new sweep name must be answered wholesale from the warm
	// cache with zero new simulations.
	srv2, err := server.New(server.Config{Workers: 2, QueueDepth: 16, CacheDir: dir})
	if err != nil {
		return fmt.Errorf("server 2: %w", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL, client.Options{Timeout: 2 * time.Minute})

	warmSpec := sweepSpec
	warmSpec.Name += "-warm"
	warmResults, warmFinal, err := runTournament(ctx, c2, warmSpec, len(metas))
	if err != nil {
		return fmt.Errorf("warm tournament: %w", err)
	}
	if warmFinal.Deduped != len(metas) {
		return fmt.Errorf("warm tournament deduped %d of %d cells", warmFinal.Deduped, len(metas))
	}
	resp, err := c2.Get(ctx, "/v1/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	var st struct {
		Simulations uint64 `json:"simulations"`
	}
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return fmt.Errorf("decode stats: %w", err)
	}
	if st.Simulations != 0 {
		return fmt.Errorf("restarted server ran %d simulations for a warm tournament, want 0", st.Simulations)
	}
	warmRep := spec.Aggregate(metas, warmResults)
	if warmRep.String() != rep.String() {
		return fmt.Errorf("warm leaderboard diverged from cold:\n%s\nvs\n%s", rep, warmRep)
	}
	fmt.Printf("tournament-smoke: warm tournament answered from cache (%d cells, 0 simulations)\n",
		warmFinal.Deduped)
	fmt.Print(rep)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tournament-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("tournament-smoke: PASS")
}

// Command benchdiff compares `go test -bench` output against a checked-in
// JSON baseline, printing a benchstat-style table of deltas per metric.
// It uses only the standard library, so it runs anywhere the repo builds.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | go run ./scripts/benchdiff
//	go run ./scripts/benchdiff bench.out               # compare a saved run
//	go run ./scripts/benchdiff -update bench.out       # rewrite the baseline
//	go run ./scripts/benchdiff -tol 0.15 bench.out     # fail on >15% regression
//	go run ./scripts/benchdiff -tol 0.01 -gate allocs/op bench.out
//
// The baseline (BENCH_baseline.json by default) maps fully-qualified
// benchmark names to their metrics. With -tol > 0, the command exits
// non-zero when a gated metric regresses by more than the given
// fraction — the `make bench` regression gate. -gate selects which
// metrics fail the run (default "ns/op,allocs/op"); CI's bench-smoke
// job gates allocs/op alone, which is deterministic even at
// -benchtime=1x on noisy runners, while ns/op stays report-only there.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark's metrics, e.g. {"ns/op": 5.4, "allocs/op": 0}.
type sample map[string]float64

// baselineFile is the on-disk schema of BENCH_baseline.json.
type baselineFile struct {
	Comment    string            `json:"comment,omitempty"`
	Benchmarks map[string]sample `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	update := flag.Bool("update", false, "write the parsed run to the baseline instead of comparing")
	tol := flag.Float64("tol", 0, "fail when a gated metric regresses by more than this fraction (0 = report only)")
	gate := flag.String("gate", "ns/op,allocs/op", "comma-separated metrics that can fail the run")
	flag.Parse()

	gated := map[string]bool{}
	for _, u := range strings.Split(*gate, ",") {
		if u = strings.TrimSpace(u); u != "" {
			gated[u] = true
		}
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	run, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(run) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *update {
		out := baselineFile{
			Comment:    "go test -bench baseline; regenerate with `make bench-baseline`",
			Benchmarks: run,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(run), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%w (generate it with -update)", err))
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}

	regressed := compare(os.Stdout, base.Benchmarks, run, *tol, gated)
	if *tol > 0 && regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.0f%% tolerance\n", *tol*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// parseBench extracts per-benchmark metrics from `go test -bench` output.
// Names are qualified with the preceding "pkg:" line so identical
// benchmark names in different packages stay distinct; repeated runs
// (-count > 1) of one benchmark are averaged.
func parseBench(r io.Reader) (map[string]sample, error) {
	out := map[string]sample{}
	counts := map[string]map[string]int{}
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if after, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(after)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N val unit [val unit]... — anything shorter is a header.
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count; some other Benchmark... line
		}
		s := out[name]
		if s == nil {
			s = sample{}
			out[name] = s
			counts[name] = map[string]int{}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			// Incremental mean across -count repetitions.
			counts[name][unit]++
			n := float64(counts[name][unit])
			s[unit] += (v - s[unit]) / n
		}
	}
	return out, sc.Err()
}

// lowerIsBetter reports whether a metric improves downward.
func lowerIsBetter(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	// Rates like instr/s or MB/s improve upward; unknown units are
	// reported without a better/worse judgement either way.
	return false
}

// compare prints old vs new per benchmark metric and reports whether any
// gated metric regressed beyond tol.
func compare(w io.Writer, base, run map[string]sample, tol float64, gated map[string]bool) (regressed bool) {
	names := make([]string, 0, len(run))
	for name := range run {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-64s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, name := range names {
		b, inBase := base[name]
		units := make([]string, 0, len(run[name]))
		for u := range run[name] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			nv := run[name][unit]
			if !inBase {
				fmt.Fprintf(w, "%-64s %-12s %14s %14s %9s\n", name, unit, "-", format(nv), "new")
				continue
			}
			ov, ok := b[unit]
			if !ok {
				fmt.Fprintf(w, "%-64s %-12s %14s %14s %9s\n", name, unit, "-", format(nv), "new")
				continue
			}
			delta := "~"
			if ov != 0 {
				d := (nv - ov) / ov
				delta = fmt.Sprintf("%+.1f%%", d*100)
				if tol > 0 && lowerIsBetter(unit) && gated[unit] && d > tol {
					delta += " !"
					regressed = true
				}
			} else if nv != 0 {
				delta = "+inf"
				if tol > 0 && unit == "allocs/op" && gated[unit] {
					// Any allocation where the baseline had none is a
					// regression of the allocation-free invariant.
					delta += " !"
					regressed = true
				}
			}
			fmt.Fprintf(w, "%-64s %-12s %14s %14s %9s\n", name, unit, format(ov), format(nv), delta)
		}
	}
	missing := make([]string, 0, len(base))
	for name := range base {
		if _, ok := run[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "%-64s %-12s %14s %14s %9s\n", name, "", "(in baseline)", "-", "missing")
	}
	return regressed
}

func format(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case v >= 1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// Command sweepsmoke is the `make sweep-smoke` gate: a tiny real
// sweep driven end to end against an in-process mamaserved — submit,
// fair-schedule, stream — followed by a restart over the same cache
// dir and a same-cells resubmission that must be answered entirely
// from the warm cache with zero new simulations. It exercises the
// whole sweep surface (expansion, dedupe, streaming, persistence)
// in a few seconds with no external processes.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"micromama/internal/client"
	"micromama/internal/server"
	"micromama/internal/sweep"
)

// spec is a four-cell tiny-scale sweep (two mixes × two controllers)
// with a small instruction target so real simulations stay fast.
func spec(name string) sweep.Spec {
	return sweep.Spec{
		Name: name,
		Grid: &sweep.Grid{
			Mixes:       [][]string{{"spec06.libquantum"}, {"spec06.sphinx3"}},
			Controllers: []string{"no", "bandit"},
			Scales:      []string{"tiny"},
			Target:      60_000,
		},
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "sweepsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Phase 1: cold sweep on a fresh server.
	srv1, err := server.New(server.Config{Workers: 2, QueueDepth: 8, CacheDir: dir})
	if err != nil {
		return fmt.Errorf("server 1: %w", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL, client.Options{Timeout: 2 * time.Minute})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	v, err := c1.SubmitSweep(ctx, spec("smoke"))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("sweep-smoke: submitted %s (%d cells)\n", v.ID, v.Cells)
	streamed := 0
	final, err := c1.StreamSweepResults(ctx, v.ID, func(ev sweep.Event) error {
		streamed++
		return nil
	})
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if final.Done != v.Cells || final.Failed != 0 || streamed != v.Cells {
		return fmt.Errorf("cold sweep: done %d failed %d streamed %d, want %d/0/%d",
			final.Done, final.Failed, streamed, v.Cells, v.Cells)
	}
	fmt.Printf("sweep-smoke: cold sweep done (%d cells simulated)\n", final.Done)

	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}

	// Phase 2: restart over the same cache dir; the same cells under a
	// new sweep name must be deduped wholesale — zero simulations.
	srv2, err := server.New(server.Config{Workers: 2, QueueDepth: 8, CacheDir: dir})
	if err != nil {
		return fmt.Errorf("server 2: %w", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL, client.Options{Timeout: 2 * time.Minute})

	warm, err := c2.SubmitSweep(ctx, spec("smoke-warm"))
	if err != nil {
		return fmt.Errorf("warm submit: %w", err)
	}
	if warm.Status != "done" || warm.Deduped != v.Cells {
		return fmt.Errorf("warm sweep: status %q deduped %d, want done with all %d cells deduped",
			warm.Status, warm.Deduped, v.Cells)
	}
	resp, err := c2.Get(ctx, "/v1/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	var st struct {
		Simulations uint64 `json:"simulations"`
	}
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return fmt.Errorf("decode stats: %w", err)
	}
	if st.Simulations != 0 {
		return fmt.Errorf("restarted server ran %d simulations for a warm sweep, want 0", st.Simulations)
	}
	fmt.Printf("sweep-smoke: warm sweep %s answered from cache (%d cells, 0 simulations)\n",
		warm.ID, warm.Deduped)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("sweep-smoke: PASS")
}
